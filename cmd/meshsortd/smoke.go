package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"meshsort/internal/service"
)

// smokeSpec is the reference job the smoke client submits: small
// enough to finish in well under a second, big enough to exercise a
// real multi-phase run.
const smokeSpec = `{"alg":"simple","d":3,"n":8}`

// runSmoke drives one end-to-end exchange against a running meshsortd
// at base: liveness, a waited reference sort job, a repeat of the
// identical spec that must be served from the result cache with a
// byte-identical payload, and a metrics read. Any deviation from the
// expected responses is an error.
func runSmoke(base string, out io.Writer) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	first, err := smokeJob(client, base)
	if err != nil {
		return fmt.Errorf("first job: %w", err)
	}
	if first.Result.Bound <= 0 || first.Result.TotalSteps <= 0 || len(first.Result.Phases) == 0 {
		return fmt.Errorf("first job: implausible result %+v", first.Result)
	}

	second, err := smokeJob(client, base)
	if err != nil {
		return fmt.Errorf("repeat job: %w", err)
	}
	if !second.CacheHit {
		return fmt.Errorf("repeat of an identical spec was not a cache hit")
	}
	if second.Result.KeySum != first.Result.KeySum {
		return fmt.Errorf("cache hit diverged: keySum %s vs %s",
			second.Result.KeySum, first.Result.KeySum)
	}

	cliqueSt, err := smokeClique(client, base)
	if err != nil {
		return fmt.Errorf("clique job: %w", err)
	}

	trafficSt, err := smokeTraffic(client, base)
	if err != nil {
		return fmt.Errorf("traffic job: %w", err)
	}

	cancelled, err := smokeCancel(client, base)
	if err != nil {
		return fmt.Errorf("cancel job: %w", err)
	}

	mResp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer mResp.Body.Close()
	var m service.Metrics
	if err := json.NewDecoder(mResp.Body).Decode(&m); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if m.JobsCompleted < 2 || m.Simulations < 1 || m.CacheHits < 1 {
		return fmt.Errorf("metrics do not reflect the smoke jobs: %+v", m)
	}
	if m.QueueCap <= 0 || m.QueueDepth < 0 {
		return fmt.Errorf("implausible queue gauge: depth=%d cap=%d", m.QueueDepth, m.QueueCap)
	}
	if m.RetryAfterSec < 1 {
		return fmt.Errorf("retryAfterSec = %d, want >= 1", m.RetryAfterSec)
	}
	if cancelled && m.JobsCancelled < 1 {
		return fmt.Errorf("a job was cancelled but jobsCancelled = %d", m.JobsCancelled)
	}

	fmt.Fprintf(out, "smoke ok: %s on %s delivered in %d steps (bound %d), %s on %s in %d steps (bound %d), %s on %s sojourn p99=%d max=%d, cache hit confirmed, DELETE exercised (cancelled=%t), %d simulation(s)\n",
		first.Result.Algorithm, first.Result.Shape,
		first.Result.TotalSteps, first.Result.Bound,
		cliqueSt.Result.Algorithm, cliqueSt.Result.Shape,
		cliqueSt.Result.TotalSteps, cliqueSt.Result.Bound,
		trafficSt.Result.Algorithm, trafficSt.Result.Shape,
		trafficSt.Result.Sojourn.P99, trafficSt.Result.Sojourn.Max,
		cancelled, m.Simulations)
	return nil
}

// smokeTraffic submits the timed-injection reference job: an (ℓ,k)
// load arriving over a window, which must come back delivered and
// carrying its per-packet sojourn percentiles — the round-trip check
// for the traffic engine's service surface.
func smokeTraffic(client *http.Client, base string) (service.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"alg":"traffic","d":3,"n":8,"load":"lk:l=2,k=3","inject":"window:64"}`))
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return service.JobStatus{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	if st.Status != service.StatusDone {
		return st, fmt.Errorf("job %s finished %s: %s", st.ID, st.Status, st.Error)
	}
	r := st.Result
	if r == nil || !r.Delivered || r.Sojourn == nil || r.Sojourn.Count == 0 {
		return st, fmt.Errorf("job %s: no sojourn distribution in the traffic result: %+v", st.ID, r)
	}
	if r.Sojourn.P50 > r.Sojourn.P95 || r.Sojourn.P95 > r.Sojourn.P99 || r.Sojourn.P99 > r.Sojourn.Max {
		return st, fmt.Errorf("job %s: sojourn percentiles not monotone: %+v", st.ID, r.Sojourn)
	}
	return st, nil
}

// smokeClique submits the non-mesh reference job: a k-relation on the
// congested clique, which greedy direct routing must deliver within
// its k-step bound through the same runner pool the mesh jobs lease.
func smokeClique(client *http.Client, base string) (service.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"alg":"cliqueroute","n":64,"k":3}`))
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return service.JobStatus{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	if st.Status != service.StatusDone {
		return st, fmt.Errorf("job %s finished %s: %s", st.ID, st.Status, st.Error)
	}
	r := st.Result
	if r == nil || !r.Delivered || r.TotalSteps < 1 || r.TotalSteps > r.Bound {
		return st, fmt.Errorf("job %s: not a delivered k-relation: %+v", st.ID, r)
	}
	return st, nil
}

// smokeCancel submits a routing job large enough to still be in flight
// when the DELETE lands, cancels it, and polls until it is terminal.
// Returns whether the job ended cancelled (a very fast server may
// legitimately finish it first; what must hold is that DELETE answers
// 200 and the job reaches a terminal state promptly either way).
func smokeCancel(client *http.Client, base string) (bool, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"alg":"route","d":3,"n":32,"seed":7}`))
	if err != nil {
		return false, err
	}
	var st service.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return false, fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		return false, err
	}
	dResp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("DELETE: status %d", dResp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		gResp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return false, err
		}
		err = json.NewDecoder(gResp.Body).Decode(&st)
		gResp.Body.Close()
		if err != nil {
			return false, err
		}
		switch st.Status {
		case service.StatusCancelled:
			return true, nil
		case service.StatusDone:
			return false, nil
		case service.StatusFailed, service.StatusTimedOut:
			return false, fmt.Errorf("cancelled job ended %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			return false, fmt.Errorf("job %s still %s 30s after DELETE", st.ID, st.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// smokeJob submits the reference spec with ?wait=1 and checks the
// terminal state is a delivered, sorted run.
func smokeJob(client *http.Client, base string) (service.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(smokeSpec))
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return service.JobStatus{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	if st.Status != service.StatusDone {
		return st, fmt.Errorf("job %s finished %s: %s", st.ID, st.Status, st.Error)
	}
	if st.Result == nil || !st.Result.Delivered || !st.Result.Sorted {
		return st, fmt.Errorf("job %s: not a delivered sort: %+v", st.ID, st.Result)
	}
	return st, nil
}
