package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshsort/internal/service"
)

// The crash-recovery tests re-exec the test binary as a child server
// process (the standard helper-process pattern), SIGKILL it mid-job,
// and assert that reopening the journal recovers: completed results
// stay queryable by ID, interrupted jobs are re-queued and finish, and
// a corrupted tail (the torn write a SIGKILL can leave) is truncated
// instead of poisoning the replay.

const (
	childEnv    = "MESHSORTD_TEST_CHILD"
	journalEnv  = "MESHSORTD_TEST_JOURNAL"
	addrFileEnv = "MESHSORTD_TEST_ADDRFILE"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		childServe()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childServe is the re-exec'd server: it listens on an ephemeral port,
// hands the address back through the addr file, and serves with an
// always-fsync journal until the parent kills it.
func childServe() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.Exit(2)
	}
	addr := "http://" + ln.Addr().String()
	if err := os.WriteFile(os.Getenv(addrFileEnv), []byte(addr), 0o644); err != nil {
		os.Exit(2)
	}
	opts := service.Options{
		Runners: 1, WorkersPerRunner: 1,
		JournalPath:  os.Getenv(journalEnv),
		JournalFsync: service.FsyncAlways,
	}
	// The context never fires; the parent ends this process with SIGKILL,
	// which is the point — no graceful path runs.
	_ = run(context.Background(), ln, opts)
}

// spawnChild re-execs the test binary as a journaled server and waits
// for its address. The returned kill function SIGKILLs it.
func spawnChild(t *testing.T, journalPath string) (string, func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		childEnv+"=1", journalEnv+"="+journalPath, addrFileEnv+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		cmd.Process.Kill() // SIGKILL: no deferred handlers, no journal close
		cmd.Wait()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base := string(data)
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				return base, kill
			}
		}
		if time.Now().After(deadline) {
			kill()
			t.Fatal("child server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postSpec(t *testing.T, base, body string, wait bool) service.JobStatus {
	t.Helper()
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		t.Fatalf("POST %s: status %d", body, resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRecoveryAfterSIGKILL: kill -9 mid-job, corrupt the journal tail
// the way a torn write would, reopen — the completed job's result is
// still there, the interrupted job runs to completion, and the garbage
// is discarded.
func TestRecoveryAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child server")
	}
	journalPath := filepath.Join(t.TempDir(), "jobs.journal")
	base, kill := spawnChild(t, journalPath)

	// One job completes cleanly before the crash...
	done := postSpec(t, base, `{"alg":"simple","d":2,"n":8,"seed":1}`, true)
	if done.Status != service.StatusDone || done.Result == nil {
		t.Fatalf("pre-crash job: %+v", done)
	}
	// ...one big routing job is mid-run when the SIGKILL lands.
	interrupted := postSpec(t, base, `{"alg":"route","d":3,"n":32,"seed":2}`, false)
	time.Sleep(300 * time.Millisecond) // let its submit/running records hit the disk
	kill()

	// A SIGKILL mid-append leaves a torn line; simulate the worst case.
	f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"j-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart on the same journal, in-process this time.
	s, err := service.Open(service.Options{
		Runners: 1, WorkersPerRunner: 1, JournalPath: journalPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	jm := s.Metrics().Journal
	if !jm.Enabled || jm.Replayed == 0 {
		t.Fatalf("journal not replayed: %+v", jm)
	}
	if jm.TruncatedBytes == 0 {
		t.Error("torn tail not truncated")
	}

	// The completed job survived the crash with its result.
	recovered, ok := s.Job(done.ID)
	if !ok {
		t.Fatalf("completed job %s lost in the crash", done.ID)
	}
	rst := recovered.Snapshot()
	if rst.Status != service.StatusDone || rst.Result == nil {
		t.Fatalf("recovered job: status=%s result=%v", rst.Status, rst.Result != nil)
	}
	if rst.Result.KeySum != done.Result.KeySum {
		t.Errorf("recovered keySum = %s, want %s", rst.Result.KeySum, done.Result.KeySum)
	}

	// The interrupted job was re-queued and reaches a terminal state.
	rq, ok := s.Job(interrupted.ID)
	if !ok {
		t.Fatalf("interrupted job %s not replayed", interrupted.ID)
	}
	select {
	case <-rq.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("re-queued job %s never finished: %+v", interrupted.ID, rq.Snapshot())
	}
	if st := rq.Snapshot(); st.Status != service.StatusDone {
		t.Errorf("re-queued job ended %s: %s", st.Status, st.Error)
	}
}

// TestRecoveryKillBeforeAnyJob: killing an idle journaled server leaves
// a journal (possibly empty) that reopens cleanly.
func TestRecoveryKillBeforeAnyJob(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child server")
	}
	journalPath := filepath.Join(t.TempDir(), "jobs.journal")
	_, kill := spawnChild(t, journalPath)
	kill()

	s, err := service.Open(service.Options{
		Runners: 1, WorkersPerRunner: 1, JournalPath: journalPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}
